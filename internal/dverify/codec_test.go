package dverify

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// codecFor builds a frontierCodec over a real expander with the given
// state width: 1 word (narrow triple) or 4 words (7-app wide fleet).
func codecFor(t *testing.T, words int) *frontierCodec {
	t.Helper()
	ps := fleet(3, 5, 2, 4, 20)
	if words == 4 {
		ps = fleet(7, 6, 1, 2, 10)
	}
	exp, err := verify.NewExpander(ps, verify.Config{NondetTies: true})
	if err != nil {
		t.Fatal(err)
	}
	if exp.StateWords() != words {
		t.Fatalf("fixture yields %d-word states, want %d", exp.StateWords(), words)
	}
	return newFrontierCodec(exp)
}

// randStates builds a reproducible batch of n states with the given number
// of significant words, shaped like packed verifier states (limited-entropy
// words) so the delta coder sees realistic input. No state is all-zero.
func randStates(rng *rand.Rand, n, words int) []verify.PackedState {
	out := make([]verify.PackedState, n)
	for i := range out {
		for k := 0; k < words; k++ {
			out[i][k] = rng.Uint64() & 0x0000_0fff_00ff_ffff
		}
		out[i][0] |= 1 // keep clear of the all-zero sentinel
	}
	return out
}

// sortedCopy returns the batch in codec order (the encoder sorts in place,
// so decoded output is compared against this).
func sortedCopy(states []verify.PackedState) []verify.PackedState {
	cp := append([]verify.PackedState(nil), states...)
	slices.SortFunc(cp, func(a, b verify.PackedState) int {
		if verify.LessState(a, b) {
			return -1
		}
		if verify.LessState(b, a) {
			return 1
		}
		return 0
	})
	return cp
}

// TestFrontierCodecRoundTrip drives encode→decode across batch sizes and
// both state widths, checking the decoded states are exactly the sorted
// batch and that large batches actually land on a compressed format.
func TestFrontierCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, words := range []int{1, 4} {
		c := codecFor(t, words)
		for _, n := range []int{0, 1, 2, 33, 4096} {
			states := randStates(rng, n, words)
			want := sortedCopy(states)
			enc := c.encode(states, nil)
			if n == 0 {
				if len(enc) != 0 {
					t.Fatalf("words=%d: empty batch encoded to %d bytes", words, len(enc))
				}
				continue
			}
			if n >= 4096 {
				if enc[0] == codecRaw {
					t.Fatalf("words=%d n=%d: large batch fell back to the raw format", words, n)
				}
				if raw := 8 * words * n; len(enc) >= raw {
					t.Fatalf("words=%d n=%d: %d encoded bytes not below the %d-byte raw size", words, n, len(enc), raw)
				}
			}
			dec, err := c.decode(enc, nil)
			if err != nil {
				t.Fatalf("words=%d n=%d: decode: %v", words, n, err)
			}
			if !slices.Equal(dec, want) {
				t.Fatalf("words=%d n=%d: round trip mismatch (%d states back, want %d)", words, n, len(dec), len(want))
			}
		}
	}
}

// TestFrontierCodecDuplicatesSurvive: the codec is not a deduplicator —
// duplicate states (the sender filter is lossy by design) must round-trip.
func TestFrontierCodecDuplicatesSurvive(t *testing.T) {
	c := codecFor(t, 1)
	states := []verify.PackedState{{42}, {7}, {42}, {7}, {42}}
	dec, err := c.decode(c.encode(states, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []verify.PackedState{{7}, {7}, {42}, {42}, {42}}
	if !slices.Equal(dec, want) {
		t.Fatalf("duplicates lost: %v", dec)
	}
}

// TestFrontierCodecRawFallback pins the version-byte dispatch: a batch
// hand-built in the legacy fixed-width format (version byte codecRaw)
// decodes identically to the modern formats, and a one-state batch the
// delta coder cannot shrink falls back to it automatically.
func TestFrontierCodecRawFallback(t *testing.T) {
	c := codecFor(t, 4)
	states := randStates(rand.New(rand.NewSource(3)), 9, 4)
	want := sortedCopy(states)

	// Hand-encode the legacy format.
	legacy := []byte{codecRaw}
	for _, s := range want {
		for k := 0; k < 4; k++ {
			legacy = binary.LittleEndian.AppendUint64(legacy, s[k])
		}
	}
	dec, err := c.decode(legacy, nil)
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if !slices.Equal(dec, want) {
		t.Fatal("legacy batch decoded wrong")
	}

	// A single state whose words sit mid-range (±2^62 deltas take 10-byte
	// varints) costs more as varints than raw words, so the encoder itself
	// must emit the raw fallback.
	one := []verify.PackedState{{1 << 62, 1 << 62, 1 << 62, 1 << 62}}
	enc := c.encode(one, nil)
	if enc[0] != codecRaw {
		t.Fatalf("incompressible batch used version %d, want raw fallback", enc[0])
	}
	dec, err = c.decode(enc, nil)
	if err != nil || len(dec) != 1 || dec[0] != one[0] {
		t.Fatalf("raw fallback round trip: %v %v", dec, err)
	}
}

// TestFrontierCodecFlatePath forces the flate format with a highly
// repetitive batch and checks both the format choice and the round trip.
func TestFrontierCodecFlatePath(t *testing.T) {
	c := codecFor(t, 1)
	states := make([]verify.PackedState, 2048)
	for i := range states {
		states[i] = verify.PackedState{uint64(1 + i%17)}
	}
	want := sortedCopy(states)
	enc := c.encode(states, nil)
	if enc[0] != codecFlate {
		t.Fatalf("repetitive batch used version %d, want flate", enc[0])
	}
	dec, err := c.decode(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(dec, want) {
		t.Fatal("flate round trip mismatch")
	}
}

// TestFrontierCodecErrors: corrupted batches fail loudly, never silently.
func TestFrontierCodecErrors(t *testing.T) {
	c := codecFor(t, 1)
	if _, err := c.decode([]byte{codecRaw, 1, 2, 3}, nil); err == nil {
		t.Fatal("short raw batch decoded")
	}
	if _, err := c.decode([]byte{codecDelta, 0x80}, nil); err == nil {
		t.Fatal("truncated varint decoded")
	}
	if _, err := c.decode([]byte{99, 1}, nil); err == nil {
		t.Fatal("unknown codec version decoded")
	}
	if _, err := c.decode([]byte{codecFlate, 0xff, 0xff}, nil); err == nil {
		t.Fatal("corrupt flate stream decoded")
	}
}

// TestFrontierCodecAmplificationBound: a crafted decompression bomb — a
// tiny DEFLATE stream inflating far past maxFlateAmplification — must be
// rejected, not buffered (verifyd absorbs batches from the network).
func TestFrontierCodecAmplificationBound(t *testing.T) {
	var bomb bytes.Buffer
	bomb.WriteByte(codecFlate)
	zw, _ := flate.NewWriter(&bomb, flate.BestCompression)
	zeros := make([]byte, 1<<16)
	for written := 0; written < 32<<20; written += len(zeros) { // 32 MiB of zeros
		zw.Write(zeros)
	}
	zw.Close()
	compressed := bomb.Len() - 1
	if int64(32<<20) <= int64(maxFlateAmplification)*int64(compressed+1024) {
		t.Skipf("bomb only reached %dx amplification", (32<<20)/compressed)
	}
	c := codecFor(t, 1)
	if _, err := c.decode(bomb.Bytes(), nil); err == nil {
		t.Fatalf("%d-byte bomb inflating to 32 MiB decoded without error", compressed)
	}
}

// TestSendFilterExactness: a sendFilter hit must imply the exact state was
// inserted before — hash-colliding states may never suppress each other —
// and re-insertion keeps a state resident (recency).
func TestSendFilterExactness(t *testing.T) {
	f := newSendFilter()
	a := verify.PackedState{1}
	h := uint64(0xdeadbeef) << 20 // arbitrary; same index for all probes below
	if f.seen(a, h) {
		t.Fatal("fresh state reported seen")
	}
	if !f.seen(a, h) {
		t.Fatal("repeat not recognised")
	}
	b := verify.PackedState{2}
	if f.seen(b, h) {
		t.Fatal("index-colliding distinct state reported seen")
	}
	// Both now resident in the 2-way set.
	if !f.seen(a, h) || !f.seen(b, h) {
		t.Fatal("2-way residency lost")
	}
	cst := verify.PackedState{3}
	if f.seen(cst, h) {
		t.Fatal("third distinct state reported seen")
	}
	// cst evicted a's older slot; a miss on a re-send is safe by design.
	if !f.seen(b, h) || !f.seen(cst, h) {
		t.Fatal("recency order broken")
	}
}

// TestProtocolVersionHandshake: both mismatch directions must fail loudly
// before any frontier moves — a coordinator rejects a node echoing another
// protocol version, and a node rejects a job carrying one (a PR-3 binary
// has no Proto field and presents as 0 either way).
func TestProtocolVersionHandshake(t *testing.T) {
	job := Job{
		Proto:    0, // what a PR-3 coordinator's gob stream decodes to
		Profiles: []switching.Profile{*prof("A", 5, 2, 4, 20)},
		NumNodes: 1,
	}
	if _, _, err := newNode(&job, nil); err == nil {
		t.Fatal("node accepted a protocol-0 job")
	}
	job.Proto = protoVersion
	if _, _, err := newNode(&job, nil); err != nil {
		t.Fatalf("node rejected the current protocol: %v", err)
	}

	// A stale worker: answers Init like PR-3 (no Proto echo).
	stale := transportFunc(func(req *Request) (*Response, error) {
		return &Response{ViolApp: -1, Fresh: 1, Next: 1}, nil
	})
	_, err := Verify([]*switching.Profile{prof("A", 5, 2, 4, 20)}, verify.Config{NondetTies: true},
		[]Transport{stale})
	if err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Fatalf("coordinator accepted a protocol-0 worker (err=%v)", err)
	}
}

// transportFunc adapts a function to the Transport interface.
type transportFunc func(*Request) (*Response, error)

func (f transportFunc) Call(req *Request) (*Response, error) { return f(req) }
func (f transportFunc) Close() error                         { return nil }

// TestFlateWriterReuse guards the codec's reused flate coder pair against
// state leaking between batches.
func TestFlateWriterReuse(t *testing.T) {
	c := codecFor(t, 1)
	for round := 0; round < 3; round++ {
		states := make([]verify.PackedState, 1024)
		for i := range states {
			states[i] = verify.PackedState{uint64(1 + (i+round)%13)}
		}
		want := sortedCopy(states)
		dec, err := c.decode(c.encode(states, nil), nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !slices.Equal(dec, want) {
			t.Fatalf("round %d: mismatch", round)
		}
	}
	// Sanity: the reused writer produces streams a fresh flate reader
	// accepts (no dictionary carry-over).
	states := make([]verify.PackedState, 1024)
	for i := range states {
		states[i] = verify.PackedState{uint64(1 + i%13)}
	}
	enc := c.encode(states, nil)
	if enc[0] == codecFlate {
		fr := flate.NewReader(bytes.NewReader(enc[1:]))
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(fr); err != nil {
			t.Fatalf("fresh flate reader rejects reused writer's stream: %v", err)
		}
	}
}
