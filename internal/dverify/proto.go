package dverify

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"tightcps/internal/sched"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// Wire protocol of the distributed search: the coordinator drives every
// worker node through a strict Init → (Step → Absorb)* request/response
// session. All types are plain data so the TCP transport can gob-encode
// them without registration; the loopback transport passes them by pointer.

// protoVersion guards the gob envelope. The batch codec's version byte
// covers only batch payloads; a field renamed on Request/Response would
// otherwise be dropped silently by gob in a mixed-version cluster (a stale
// verifyd daemon), corrupting the search with no error. KindInit therefore
// carries the coordinator's version in Job.Proto and the node echoes its
// own in Response.Proto, so either side rejects a mismatch loudly before
// any frontier is exchanged. Version 6 is the PR-9 fault-tolerance
// protocol (explicit shard-ownership tables, era-tagged mesh frames,
// checkpoint/recovery control: Job carries Owners/Era/Cut, KindPoll can
// carry a Recover order, snapshots report checkpoint progress and dead
// links); version 5 is the PR-8 protocol (telemetry: Job carries the run
// ID, mesh snapshots carry per-level fresh-commit counts); version 4 is
// the PR-6 protocol (per-node expansion worker pools: Job carries
// Workers); version 3 is the PR-5 protocol (worker↔worker mesh links,
// pipelined levels, poll/epoch control plane); version 2 is the PR-4
// relay protocol (per-source absorb batch lists, codec-framed); PR-3
// binaries predate the field and present as version 0.
const protoVersion = 6

// Kind discriminates coordinator requests.
type Kind uint8

const (
	// KindInit ships the job to a node, resetting any previous one.
	KindInit Kind = iota + 1
	// KindStep (relay topology) expands the node's current frontier one BFS
	// level, returning hash-routed successor batches for the other nodes.
	KindStep
	// KindAbsorb (relay topology) delivers the routed successors owned by
	// this node; fresh ones enter its next-level frontier.
	KindAbsorb
	// KindPoll (mesh topology) is one control-plane epoch: the request
	// carries the coordinator's latest milestone knowledge (Control), the
	// worker expands and exchanges frontiers over its mesh links until it
	// has news for the coordinator (or a short time budget runs out) and
	// answers with a counter snapshot.
	KindPoll
	// KindPeerHello opens a worker↔worker mesh link: it is the first value
	// on a dialed peer connection (never sent on a coordinator session),
	// followed by a stream of Frame values.
	KindPeerHello
)

// Job describes one verification run from a single worker node's
// perspective. The verification fields mirror the verdict-relevant subset
// of verify.Config plus the per-node Workers pool size; Trace and
// Distributed are coordinator-side concerns and never cross the wire.
type Job struct {
	// Proto is the coordinator's protocol version (protoVersion); nodes
	// reject jobs from a different one.
	Proto int
	// Profiles is the application set under verification, by value so the
	// gob stream is self-contained.
	Profiles []switching.Profile
	// NumNodes and NodeID place this node in the cluster. Shard ownership
	// follows Owners when present; otherwise the node owns the default
	// contiguous range [NodeID·64/NumNodes, (NodeID+1)·64/NumNodes).
	NumNodes int
	NodeID   int
	// Owners, when non-nil, is the explicit shard-ownership table: entry s
	// names the node owning hash shard s (len 64). The coordinator rewrites
	// it on recovery so survivors take over a dead node's shards.
	Owners []uint8

	MaxDisturbances   int
	Policy            sched.PreemptionPolicy
	NondetTies        bool
	SymmetryReduction bool
	// MaxStates is the per-node visited budget (per-node memory model):
	// the aggregate capacity of a run is NumNodes × MaxStates.
	MaxStates int
	// Workers is the per-node expansion pool size: the node expands its
	// frontier through this many goroutines over a striped visited set,
	// so an N-node cluster of M-core hosts searches N×M-wide. 0 means
	// the node's own GOMAXPROCS; 1 keeps the single-goroutine path.
	Workers int

	// Mesh selects the direct worker↔worker exchange: the node opens (or
	// accepts) one data link per peer at Init and the coordinator drives
	// it with KindPoll instead of KindStep/KindAbsorb.
	Mesh bool
	// Session identifies this run's mesh rendezvous: peer links carry it
	// so a daemon serving several coordinators never cross-wires links.
	Session uint64
	// RunID is the telemetry correlation ID minted where the run entered
	// the system (admission service or CLI). Purely observational: it
	// never affects the search, and nodes only log it.
	RunID string
	// Peers are the advertised addresses of every node in the cluster,
	// indexed by node ID (nil for in-process loopback meshes, where links
	// are channels). Node i dials Peers[j] for every j ≠ i.
	Peers []string

	// FT enables fault tolerance: the worker checkpoints completed levels
	// (when CheckpointDir is set), tags mesh batches with its era, and
	// reports link failures instead of poisoning the run.
	FT bool
	// CheckpointDir is where the worker persists per-(shard,level)
	// checkpoint segments; empty disables checkpointing (recovery then
	// degrades to a full restart on the survivors).
	CheckpointDir string
	// Era and Cut accompany a recovery KindInit to a late-joining
	// replacement worker: Era > 0 means "join the run in progress" — the
	// worker restores its owned shards from checkpoint segments up to
	// level Cut instead of seeding the initial state.
	Era int
	Cut int
}

// Request is one coordinator→node message.
type Request struct {
	Kind Kind
	// Job accompanies KindInit.
	Job *Job
	// Batches accompanies KindAbsorb: the codec-encoded frontier batches
	// routed to this node during the current level, in ascending
	// source-node order, empty batches omitted. Each batch is decoded
	// independently (compressed batches cannot be concatenated byte-wise).
	Batches [][]byte
	// Ctl accompanies KindPoll.
	Ctl *Control
	// Hello accompanies KindPeerHello.
	Hello *PeerHello
}

// Control is the coordinator's milestone knowledge, piggybacked on every
// KindPoll so workers can release deferred commits and skip doomed work.
// See mesh.go for the invariants behind Final and Done.
type Control struct {
	// Final is the highest level whose bucket membership is final
	// everywhere: all messages tagged ≤ Final have been absorbed, so
	// arrivals tagged ≤ Final+1 may commit immediately.
	Final int
	// Done is the highest level fully expanded everywhere (informational;
	// workers gate commits on Final alone).
	Done int
	// HaveViol/ViolLevel/ViolState broadcast the minimum violation found
	// so far, letting workers skip states that cannot improve on it.
	HaveViol  bool
	ViolLevel int
	ViolState verify.PackedState
	// Finish ends the session's search: the worker tears down its mesh
	// links and answers with its final counter snapshot.
	Finish bool
	// Recover, when non-nil, orders the worker into a new era: roll back
	// to the recovery cut, adopt the new ownership table, restore owned
	// shards from checkpoint segments, and resume. Delivered on the first
	// KindPoll after the coordinator declares a worker dead.
	Recover *Recover
}

// Recover is the coordinator's takeover order after worker deaths. Every
// surviving worker performs the same global rollback: reset volatile
// search state, restore all shards it owns under Owners from checkpoint
// segments at levels ≤ Cut, and re-expand from level Cut. Cut < 0 means
// no usable checkpoint exists and the run restarts from the initial
// state.
type Recover struct {
	// Era is the new epoch of the run; batches tagged with older eras are
	// dropped on receipt.
	Era int
	// Owners is the new shard-ownership table (len 64).
	Owners []uint8
	// Cut is the highest checkpointed level consistent across the cluster.
	Cut int
	// Dead lists the node IDs declared dead this recovery (informational;
	// workers use Owners for routing).
	Dead []int
}

// PeerHello identifies a dialed worker↔worker mesh link.
type PeerHello struct {
	Proto    int
	Session  uint64
	From, To int
}

// Frame is one level-tagged frontier batch on a TCP mesh link, following
// the PeerHello on the same gob stream. Batch is frontierCodec-encoded.
// Era tags the sender's recovery era (0 before any recovery); receivers
// in a newer era drop the frame.
type Frame struct {
	Level int
	Era   int
	Batch []byte
}

// Response is one node→coordinator message. Err is the worker-side failure
// channel; when non-empty every other field is meaningless.
type Response struct {
	Err string

	// Proto echoes the node's protocol version on KindInit replies; the
	// coordinator rejects nodes speaking another version (a PR-3 verifyd
	// has no such field and presents as 0).
	Proto int

	// Batches (KindStep) holds, per destination node, the codec-encoded
	// successors this node generated but does not own. The node's own
	// index is always empty — self-owned successors are absorbed locally
	// during the step.
	Batches [][]byte
	// Transitions counts the successors generated this level (pre-dedup),
	// mirroring the local searches.
	Transitions int
	// Routed and Filtered count this step's foreign successors: Routed
	// were encoded into Batches, Filtered were suppressed by the
	// per-destination recent-state filter (the owner has provably seen
	// them). RawBytes is the fixed-width cost of all Routed+Filtered
	// states — the wire volume of the PR-3 format — and WireBytes the
	// bytes actually occupied by Batches, so the coordinator can report
	// what the filter and the compressed codec saved.
	Routed    int
	Filtered  int
	RawBytes  int
	WireBytes int
	// Fresh counts states newly added to this node's visited set by this
	// call: self-owned successors for KindStep, routed ones for KindAbsorb,
	// and the initial state for KindInit when this node owns it.
	Fresh int
	// Next is the size of the node's next-level frontier after this call.
	Next int
	// TooLarge reports that the per-node visited budget was exhausted; the
	// node stopped expanding or absorbing mid-call.
	TooLarge bool

	// Viol flags a deadline miss found while expanding this level;
	// ViolState is the minimum violating frontier state of this node's
	// partition (the cross-node tie-break key) and ViolApp the application
	// that missed. In mesh snapshots ViolLevel carries the BFS level of the
	// node's minimum violation (level-first, then state — the first-
	// violating-level tie-break).
	Viol      bool
	ViolState verify.PackedState
	ViolApp   int
	ViolLevel int

	// Mesh snapshot fields (KindPoll responses). All counters are
	// cumulative over the session, so the coordinator's latest round is
	// always a complete picture.
	//
	// SentByLevel and RecvByLevel count the states this node shipped to
	// and drained from its mesh links, indexed by the BFS level of the
	// states (self-owned successors never cross a link and are excluded
	// on both sides). The coordinator's epoch accounting declares a level
	// final when the cluster-wide sums match — the classic sent-vs-
	// absorbed termination criterion.
	SentByLevel []int
	RecvByLevel []int
	// Drained is the highest level L such that this node has expanded (or
	// deliberately skipped, under a violation bound) every state committed
	// to buckets 0..L. Capped at the node's final-level knowledge + 1.
	Drained int
	// Idle reports that the node has no expandable work, no deferred
	// arrivals and no buffered sends — quiescent under its current
	// milestone knowledge.
	Idle bool
	// MaxFresh is the deepest level at which this node committed a fresh
	// state (the node's contribution to Result.Depth).
	MaxFresh int
	// FreshByLevel counts the fresh states this node committed per BFS
	// level (cumulative, like the other snapshot counters). The
	// coordinator folds these into the run trace: summed across nodes,
	// level L's count is the size of the global BFS frontier at depth L.
	FreshByLevel []int
	// Links are this node's cumulative per-destination wire counters.
	Links []verify.LinkWire

	// Era echoes the worker's current recovery era so the coordinator can
	// tell pre- and post-recovery snapshots apart.
	Era int
	// Ckpt is the highest level fully persisted to checkpoint segments
	// (-1 when nothing is checkpointed or checkpointing is disabled).
	Ckpt int
	// LinkDown lists peer node IDs this worker can no longer reach (send
	// or receive failures on the mesh link). Cumulative; under FT a dead
	// link is reported here instead of poisoning the run via Err.
	LinkDown []int
}

// Frontier batch codec. Every batch opens with a version byte naming the
// format of the rest; decoders dispatch on it, so formats can coexist on
// one wire and the fixed-width PR-3 layout stays decodable forever.
//
//   - codecRaw: the states' words verbatim, little-endian, StateWords()
//     words per state — the legacy format, also the encoder's fallback when
//     delta coding would not shrink a (tiny) batch.
//   - codecDelta: states sorted by verify.LessState, then for every state
//     each word's difference to the previous state's same word, zigzag
//     varint coded. Sorting makes word 0 non-decreasing and packs the
//     field-structured states into short deltas.
//   - codecFlate: the codecDelta payload, DEFLATE-compressed. Chosen only
//     when it is the smallest of the three.
//
// Sorting a batch is sound: absorb order within a level affects neither the
// visited partition nor the verdict (levels are barriers, and the minimum-
// violator tie-break is order-independent).
const (
	codecRaw   byte = 0
	codecDelta byte = 1
	codecFlate byte = 2
)

// flateMinSize is the smallest delta payload worth running DEFLATE over;
// below it the dictionary warm-up costs more bytes than it saves.
const flateMinSize = 256

// maxFlateAmplification bounds how far a compressed batch may inflate
// relative to its wire size. verifyd accepts TCP connections, so absorb
// must not inflate untrusted bytes unboundedly (a decompression bomb would
// OOM the worker and take the cluster run with it). Legitimate batches —
// sorted low-entropy varint deltas — measure well under 100× even on
// degenerate all-duplicate levels; past the bound the node aborts loudly
// (a conservative failure, never a wrong verdict).
const maxFlateAmplification = 256

// frontierCodec encodes and decodes frontier batches for one node. The
// codecRaw format is exactly the expander's AppendState/DecodeStates
// layout — one implementation, shared, so the two can never drift. Scratch
// buffers (and the flate coder pair) are reused across levels, so
// per-batch work allocates only when a batch outgrows every previous one.
// Not safe for concurrent use — each node owns one.
type frontierCodec struct {
	exp   *verify.Expander
	words int // significant words per state (exp.StateWords)

	buf  bytes.Buffer // varint payload scratch (encode)
	zbuf bytes.Buffer // flate output scratch (encode)
	zw   *flate.Writer
	zr   io.ReadCloser // reused via flate.Resetter (decode)
	br   bytes.Reader
}

func newFrontierCodec(exp *verify.Expander) *frontierCodec {
	return &frontierCodec{exp: exp, words: exp.StateWords()}
}

// encode appends the batch encoding of states to dst. states is sorted in
// place (part of the format). An empty batch encodes to zero bytes.
func (c *frontierCodec) encode(states []verify.PackedState, dst []byte) []byte {
	if len(states) == 0 {
		return dst
	}
	slices.SortFunc(states, func(a, b verify.PackedState) int {
		if verify.LessState(a, b) {
			return -1
		}
		if verify.LessState(b, a) {
			return 1
		}
		return 0
	})
	c.buf.Reset()
	var tmp [binary.MaxVarintLen64]byte
	var prev verify.PackedState
	for _, s := range states {
		for k := 0; k < c.words; k++ {
			d := int64(s[k] - prev[k]) // exact signed delta mod 2^64
			c.buf.Write(tmp[:binary.PutUvarint(tmp[:], zigzag(d))])
		}
		prev = s
	}
	rawSize := 8 * c.words * len(states)
	payload := c.buf.Bytes()
	if len(payload) >= rawSize {
		// Tiny or adversarial batch: fall back to the fixed-width format.
		dst = append(dst, codecRaw)
		for _, s := range states {
			dst = c.exp.AppendState(dst, s)
		}
		return dst
	}
	if len(payload) >= flateMinSize {
		c.zbuf.Reset()
		if c.zw == nil {
			c.zw, _ = flate.NewWriter(&c.zbuf, flate.BestSpeed)
		} else {
			c.zw.Reset(&c.zbuf)
		}
		c.zw.Write(payload)
		c.zw.Close()
		if c.zbuf.Len() < len(payload) {
			dst = append(dst, codecFlate)
			return append(dst, c.zbuf.Bytes()...)
		}
	}
	dst = append(dst, codecDelta)
	return append(dst, payload...)
}

// decode appends the states of one encoded batch to out, dispatching on the
// version byte. A zero-length batch holds no states.
func (c *frontierCodec) decode(batch []byte, out []verify.PackedState) ([]verify.PackedState, error) {
	if len(batch) == 0 {
		return out, nil
	}
	version, payload := batch[0], batch[1:]
	switch version {
	case codecRaw:
		return c.exp.DecodeStates(payload, out)
	case codecFlate:
		c.br.Reset(payload)
		if c.zr == nil {
			c.zr = flate.NewReader(&c.br)
		} else if err := c.zr.(flate.Resetter).Reset(&c.br, nil); err != nil {
			return out, fmt.Errorf("dverify: resetting flate reader: %w", err)
		}
		c.buf.Reset()
		limit := int64(maxFlateAmplification) * int64(len(payload)+1024)
		n, err := c.buf.ReadFrom(io.LimitReader(c.zr, limit+1))
		if err != nil {
			return out, fmt.Errorf("dverify: inflating frontier batch: %w", err)
		}
		if n > limit {
			return out, fmt.Errorf("dverify: frontier batch of %d compressed bytes inflates past the %d× amplification bound", len(payload), maxFlateAmplification)
		}
		return c.decodeDelta(c.buf.Bytes(), out)
	case codecDelta:
		return c.decodeDelta(payload, out)
	default:
		return out, fmt.Errorf("dverify: unknown frontier codec version %d", version)
	}
}

// decodeDelta reverses the sorted zigzag varint-delta payload.
func (c *frontierCodec) decodeDelta(payload []byte, out []verify.PackedState) ([]verify.PackedState, error) {
	var prev verify.PackedState
	for len(payload) > 0 {
		s := prev
		for k := 0; k < c.words; k++ {
			u, n := binary.Uvarint(payload)
			if n <= 0 {
				return out, fmt.Errorf("dverify: truncated varint in frontier batch (word %d)", k)
			}
			payload = payload[n:]
			s[k] = prev[k] + uint64(unzigzag(u))
		}
		out = append(out, s)
		prev = s
	}
	return out, nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
