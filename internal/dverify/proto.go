package dverify

import (
	"tightcps/internal/sched"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// Wire protocol of the distributed search: the coordinator drives every
// worker node through a strict Init → (Step → Absorb)* request/response
// session. All types are plain data so the TCP transport can gob-encode
// them without registration; the loopback transport passes them by pointer.

// Kind discriminates coordinator requests.
type Kind uint8

const (
	// KindInit ships the job to a node, resetting any previous one.
	KindInit Kind = iota + 1
	// KindStep expands the node's current frontier one BFS level, returning
	// hash-routed successor batches for the other nodes.
	KindStep
	// KindAbsorb delivers the routed successors owned by this node; fresh
	// ones enter its next-level frontier.
	KindAbsorb
)

// Job describes one verification run from a single worker node's
// perspective. The verification fields mirror the verdict-relevant subset
// of verify.Config; Workers, Trace and Distributed are coordinator-side
// concerns and never cross the wire.
type Job struct {
	// Profiles is the application set under verification, by value so the
	// gob stream is self-contained.
	Profiles []switching.Profile
	// NumNodes and NodeID place this node in the cluster: it owns the
	// contiguous shard range [NodeID·64/NumNodes, (NodeID+1)·64/NumNodes).
	NumNodes int
	NodeID   int

	MaxDisturbances   int
	Policy            sched.PreemptionPolicy
	NondetTies        bool
	SymmetryReduction bool
	// MaxStates is the per-node visited budget (per-node memory model):
	// the aggregate capacity of a run is NumNodes × MaxStates.
	MaxStates int
}

// Request is one coordinator→node message.
type Request struct {
	Kind Kind
	// Job accompanies KindInit.
	Job *Job
	// Batch accompanies KindAbsorb: the concatenated wire encodings of
	// every successor routed to this node during the current level, merged
	// in ascending source-node order.
	Batch []byte
}

// Response is one node→coordinator message. Err is the worker-side failure
// channel; when non-empty every other field is meaningless.
type Response struct {
	Err string

	// Batches (KindStep) holds, per destination node, the wire-encoded
	// successors this node generated but does not own. The node's own
	// index is always empty — self-owned successors are absorbed locally
	// during the step.
	Batches [][]byte
	// Transitions counts the successors generated this level (pre-dedup),
	// mirroring the local searches.
	Transitions int
	// Fresh counts states newly added to this node's visited set by this
	// call: self-owned successors for KindStep, routed ones for KindAbsorb,
	// and the initial state for KindInit when this node owns it.
	Fresh int
	// Next is the size of the node's next-level frontier after this call.
	Next int
	// TooLarge reports that the per-node visited budget was exhausted; the
	// node stopped expanding or absorbing mid-call.
	TooLarge bool

	// Viol flags a deadline miss found while expanding this level;
	// ViolState is the minimum violating frontier state of this node's
	// partition (the cross-node tie-break key) and ViolApp the application
	// that missed.
	Viol      bool
	ViolState verify.PackedState
	ViolApp   int
}
