package control

import (
	"errors"
	"math"

	"tightcps/internal/lti"
	"tightcps/internal/mat"
	"tightcps/internal/opt"
)

// ErrNoCQLF is returned when the common-quadratic-Lyapunov-function search
// fails. The search is sufficient only: failure does not prove that no CQLF
// exists (though for switching-unstable pairs none does).
var ErrNoCQLF = errors.New("control: no common quadratic Lyapunov function found")

// SwitchedPair returns the two closed-loop matrices of the bi-modal switched
// system in the common augmented coordinates z = [x; u_prev]:
//
//	mode MT: x' = (Φ−ΓKT)x, u_prev' = −KT·x
//	mode ME: x' = Φx + Γ·u_prev, u_prev' = −KE·[x; u_prev]
//
// Both matrices are (n+1)×(n+1); a common Lyapunov function in this space
// certifies stability under arbitrary mode switching (Lin & Antsaklis [7]).
func SwitchedPair(s *lti.System, kT, kE lti.Feedback) (aT, aE *mat.Matrix) {
	n := s.Order()
	if kT.Order() != n || kE.Order() != n+1 {
		panic(lti.ErrShape)
	}
	aT = mat.New(n+1, n+1)
	aclT := lti.ClosedLoop(s, kT)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			aT.Set(i, j, aclT.At(i, j))
		}
	}
	for j := 0; j < n; j++ {
		aT.Set(n, j, -kT.K.At(0, j))
	}
	aug := s.Augmented()
	aE = lti.ClosedLoop(aug, kE)
	return aT, aE
}

// CQLFResult reports the outcome of a common-Lyapunov search.
type CQLFResult struct {
	P      *mat.Matrix // the common Lyapunov matrix (nil if not found)
	Found  bool
	Margin float64 // min decrease margin: −max_i λmax(AᵢᵀPAᵢ−P), >0 when found
	Method string  // which candidate/search produced P
}

// CheckCQLF verifies that P ≻ 0 and AᵢᵀPAᵢ − P ≺ 0 for every mode matrix,
// returning the decrease margin (smallest eigenvalue gap, positive iff P is
// a valid CQLF). P is normalised internally so margins are comparable.
func CheckCQLF(p *mat.Matrix, modes ...*mat.Matrix) (float64, bool) {
	if !mat.IsPositiveDefinite(p) {
		return -1, false
	}
	pn := mat.Scale(1/p.NormFro(), p)
	margin := math.Inf(1)
	for _, a := range modes {
		d := mat.Sub(mat.Mul(mat.Mul(a.T(), pn), a), pn).Symmetrize()
		eig, err := mat.Eigenvalues(d)
		if err != nil {
			return -1, false
		}
		lmax := math.Inf(-1)
		for _, l := range eig {
			if real(l) > lmax {
				lmax = real(l)
			}
		}
		if m := -lmax; m < margin {
			margin = m
		}
	}
	return margin, margin > 0
}

// CommonLyapunov searches for a common quadratic Lyapunov function for the
// given Schur-stable mode matrices. It first tries closed-form candidates
// (individual and chained discrete Lyapunov solutions, including the
// Narendra–Balakrishnan construction that is exact for commuting modes) and
// falls back to a Nelder–Mead search over Cholesky factors.
func CommonLyapunov(modes ...*mat.Matrix) (CQLFResult, error) {
	if len(modes) == 0 {
		return CQLFResult{}, errors.New("control: no modes given")
	}
	n := modes[0].Rows()
	for _, a := range modes {
		if a.Rows() != n || a.Cols() != n {
			return CQLFResult{}, mat.ErrDimension
		}
		if ok, err := mat.IsSchurStable(a); err != nil || !ok {
			return CQLFResult{Found: false}, ErrNoCQLF
		}
	}
	id := mat.Identity(n)

	var candidates []struct {
		p      *mat.Matrix
		method string
	}
	add := func(p *mat.Matrix, method string) {
		if p != nil {
			candidates = append(candidates, struct {
				p      *mat.Matrix
				method string
			}{p, method})
		}
	}
	// Individual solutions P_i: dlyap(A_i, I).
	sols := make([]*mat.Matrix, len(modes))
	for i, a := range modes {
		if p, err := Dlyap(a, id); err == nil {
			sols[i] = p
			add(p, "dlyap-single")
		}
	}
	// Sum of individual solutions.
	if sols[0] != nil {
		sum := sols[0].Clone()
		ok := true
		for _, p := range sols[1:] {
			if p == nil {
				ok = false
				break
			}
			sum = mat.Add(sum, p)
		}
		if ok {
			add(sum, "dlyap-sum")
		}
	}
	// Chained (Narendra–Balakrishnan) constructions, both orders for pairs.
	chain := func(order []int) *mat.Matrix {
		p := id.Clone()
		for _, i := range order {
			q, err := Dlyap(modes[i], p)
			if err != nil {
				return nil
			}
			p = q
		}
		return p
	}
	fwd := make([]int, len(modes))
	for i := range fwd {
		fwd[i] = i
	}
	add(chain(fwd), "chain-forward")
	rev := make([]int, len(modes))
	for i := range rev {
		rev[i] = len(modes) - 1 - i
	}
	add(chain(rev), "chain-reverse")

	best := CQLFResult{Margin: math.Inf(-1)}
	for _, c := range candidates {
		if m, ok := CheckCQLF(c.p, modes...); ok && m > best.Margin {
			best = CQLFResult{P: c.p, Found: true, Margin: m, Method: c.method}
		}
	}
	if best.Found {
		return best, nil
	}

	// Fall back: Nelder–Mead over the lower-triangular Cholesky factor of P,
	// maximising the decrease margin.
	dim := n * (n + 1) / 2
	unpack := func(v []float64) *mat.Matrix {
		l := mat.New(n, n)
		k := 0
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				l.Set(i, j, v[k])
				k++
			}
		}
		// P = LLᵀ + εI keeps the candidate PD even at degenerate L.
		return mat.Add(mat.Mul(l, l.T()), mat.Scale(1e-9, id))
	}
	objective := func(v []float64) float64 {
		p := unpack(v)
		m, _ := CheckCQLF(p, modes...)
		return -m
	}
	// Start from the best closed-form candidate's Cholesky factor, or I.
	start := make([]float64, dim)
	k := 0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if i == j {
				start[k] = 1
			}
			k++
		}
	}
	if sols[0] != nil {
		if l, err := mat.Cholesky(mat.Scale(1/sols[0].NormFro(), sols[0])); err == nil {
			k = 0
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					start[k] = l.At(i, j)
					k++
				}
			}
		}
	}
	res, err := opt.NelderMead(objective, start, opt.NelderMeadOptions{MaxIters: 4000 * dim, TolF: 1e-14, Step: 0.3})
	if err == nil && res.F < 0 {
		p := unpack(res.X)
		if m, ok := CheckCQLF(p, modes...); ok {
			return CQLFResult{P: p, Found: true, Margin: m, Method: "nelder-mead"}, nil
		}
	}
	return CQLFResult{Found: false}, ErrNoCQLF
}

// SwitchingStable reports whether the bi-modal switched closed loop formed
// by kT and kE on plant s admits a common quadratic Lyapunov function.
func SwitchingStable(s *lti.System, kT, kE lti.Feedback) (CQLFResult, error) {
	aT, aE := SwitchedPair(s, kT, kE)
	return CommonLyapunov(aT, aE)
}
