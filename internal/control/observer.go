package control

import (
	"tightcps/internal/lti"
	"tightcps/internal/mat"
)

// PlaceObserver designs a Luenberger observer gain L (n×1) such that the
// estimation-error dynamics Φ − L·C have the desired eigenvalues, by pole
// placement on the dual system (Φᵀ, Cᵀ). The observer is
//
//	x̂[k+1] = Φ·x̂[k] + Γ·u[k] + L·(y[k] − C·x̂[k]).
//
// Useful when an application's full state is not measurable and the
// switching controllers must run on estimates.
func PlaceObserver(s *lti.System, poles []complex128) (*mat.Matrix, error) {
	dual, err := lti.NewSystem(s.Phi.T(), s.C.T(), s.Gamma.T(), s.H)
	if err != nil {
		return nil, err
	}
	k, err := PlacePoles(dual, poles)
	if err != nil {
		return nil, err
	}
	return k.K.T(), nil
}

// Observer simulates a Luenberger observer alongside a plant.
type Observer struct {
	sys *lti.System
	l   *mat.Matrix
	xh  []float64
}

// NewObserver creates an observer with gain l starting from estimate xh0
// (zero when nil).
func NewObserver(s *lti.System, l *mat.Matrix, xh0 []float64) *Observer {
	xh := make([]float64, s.Order())
	copy(xh, xh0)
	return &Observer{sys: s, l: l, xh: xh}
}

// Estimate returns a copy of the current state estimate.
func (o *Observer) Estimate() []float64 {
	return append([]float64(nil), o.xh...)
}

// Update advances the estimate one sample given the applied input u and the
// measured output y.
func (o *Observer) Update(u, y float64) {
	innov := y - o.sys.Output(o.xh)
	next := o.sys.Step(o.xh, u)
	for i := range next {
		next[i] += o.l.At(i, 0) * innov
	}
	o.xh = next
}
