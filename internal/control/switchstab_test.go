package control

import (
	"math"
	"testing"

	"tightcps/internal/lti"
	"tightcps/internal/mat"
	"tightcps/internal/plants"
)

func TestSwitchedPairShapesAndSpectra(t *testing.T) {
	s := plants.Motivational()
	aT, aE := SwitchedPair(s, plants.MotivationalKT, plants.MotivationalKEStable)
	if aT.Rows() != 4 || aE.Rows() != 4 {
		t.Fatalf("augmented pair not 4x4: %d, %d", aT.Rows(), aE.Rows())
	}
	// aT's spectrum = spectrum of Φ−ΓKT plus a zero (the held input is
	// overwritten every MT sample).
	eigT, err := mat.Eigenvalues(aT)
	if err != nil {
		t.Fatal(err)
	}
	eigCL, err := mat.Eigenvalues(lti.ClosedLoop(s, plants.MotivationalKT))
	if err != nil {
		t.Fatal(err)
	}
	zero := 0
	for _, l := range eigT {
		if math.Hypot(real(l), imag(l)) < 1e-9 {
			zero++
		}
	}
	if zero < 1 {
		t.Fatalf("augmented MT matrix lacks the structural zero eigenvalue: %v", eigT)
	}
	_ = eigCL
	// Both mode matrices must be Schur stable for the stable pair.
	for i, a := range []*mat.Matrix{aT, aE} {
		ok, err := mat.IsSchurStable(a)
		if err != nil || !ok {
			t.Fatalf("mode %d unstable (err=%v)", i, err)
		}
	}
}

// TestSwitchedPairSimulationConsistency: stepping the augmented matrices
// reproduces the switching.Simulator semantics (cross-layer consistency of
// the mode dynamics).
func TestSwitchedPairSimulationConsistency(t *testing.T) {
	s := plants.Motivational()
	aT, aE := SwitchedPair(s, plants.MotivationalKT, plants.MotivationalKEStable)
	// Sequence: 3×ME, 2×MT, 4×ME starting from z0=[1 0 0 0].
	z := []float64{1, 0, 0, 0}
	seq := []*mat.Matrix{aE, aE, aE, aT, aT, aE, aE, aE, aE}
	// Manual reference simulation of the same switched loop.
	x := []float64{1, 0, 0}
	uPrev := 0.0
	for step, m := range seq {
		z = m.MulVec(z)
		if m == aT {
			u := -plants.MotivationalKT.K.MulVec(x)[0]
			x = s.Step(x, u)
			uPrev = u
		} else {
			zz := append(append([]float64{}, x...), uPrev)
			cmd := -plants.MotivationalKEStable.K.MulVec(zz)[0]
			x = s.Step(x, uPrev)
			uPrev = cmd
		}
		for i := 0; i < 3; i++ {
			if math.Abs(z[i]-x[i]) > 1e-9 {
				t.Fatalf("step %d state %d: aug %v vs ref %v", step, i, z[i], x[i])
			}
		}
		if math.Abs(z[3]-uPrev) > 1e-9 {
			t.Fatalf("step %d held input: aug %v vs ref %v", step, z[3], uPrev)
		}
	}
}

// TestCQLFStablePairFound reproduces the paper's claim that KT and KsE are
// switching stable: a common quadratic Lyapunov function exists and our
// search finds one.
func TestCQLFStablePairFound(t *testing.T) {
	res, err := SwitchingStable(plants.Motivational(), plants.MotivationalKT, plants.MotivationalKEStable)
	if err != nil {
		t.Fatalf("no CQLF found for the stable pair: %v", err)
	}
	if !res.Found || res.Margin <= 0 {
		t.Fatalf("result not positive: %+v", res)
	}
	// Re-verify the certificate independently.
	aT, aE := SwitchedPair(plants.Motivational(), plants.MotivationalKT, plants.MotivationalKEStable)
	if m, ok := CheckCQLF(res.P, aT, aE); !ok || m <= 0 {
		t.Fatalf("returned certificate does not verify: margin=%v ok=%v", m, ok)
	}
}

// TestCQLFUnstablePairNotFound: for KT and KuE the paper demonstrates
// switching instability; no CQLF can exist, so the search must fail.
func TestCQLFUnstablePairNotFound(t *testing.T) {
	res, err := SwitchingStable(plants.Motivational(), plants.MotivationalKT, plants.MotivationalKEUnstable)
	if err == nil || res.Found {
		t.Fatalf("CQLF reported for a switching-unstable pair: %+v", res)
	}
}

func TestCQLFCaseStudyPairsStable(t *testing.T) {
	// Table 1 states all six (KT, KE) pairs were designed for switching
	// stability; our search should certify each.
	for _, a := range plants.CaseStudy() {
		res, err := SwitchingStable(a.Plant, a.KT, a.KE)
		if err != nil || !res.Found {
			t.Errorf("%s: no CQLF found (err=%v)", a.Name, err)
		}
	}
}

func TestCommonLyapunovIdenticalModes(t *testing.T) {
	a := mat.Diag([]float64{0.5, 0.3})
	res, err := CommonLyapunov(a, a)
	if err != nil || !res.Found {
		t.Fatalf("identical stable modes must admit a CQLF: %v", err)
	}
}

func TestCommonLyapunovCommutingModes(t *testing.T) {
	// Commuting stable matrices always admit a CQLF
	// (Narendra–Balakrishnan); diagonal matrices commute.
	a1 := mat.Diag([]float64{0.9, 0.2})
	a2 := mat.Diag([]float64{0.1, 0.8})
	res, err := CommonLyapunov(a1, a2)
	if err != nil || !res.Found {
		t.Fatalf("commuting modes: %v", err)
	}
}

func TestCommonLyapunovRejectsUnstableMode(t *testing.T) {
	a1 := mat.Diag([]float64{0.5})
	a2 := mat.Diag([]float64{1.5})
	res, err := CommonLyapunov(a1, a2)
	if err == nil || res.Found {
		t.Fatalf("unstable mode accepted: %+v", res)
	}
}

func TestCommonLyapunovNoModes(t *testing.T) {
	if _, err := CommonLyapunov(); err == nil {
		t.Fatal("empty mode list accepted")
	}
}

func TestCheckCQLFRejectsNonPD(t *testing.T) {
	a := mat.Diag([]float64{0.5})
	if _, ok := CheckCQLF(mat.Diag([]float64{-1}), a); ok {
		t.Fatal("negative P accepted")
	}
}

// TestCQLFKnownCounterexample: the classic pair that is individually stable
// but admits no CQLF and is in fact divergent under some switching
// sequence; the search must not certify it.
func TestCQLFKnownCounterexample(t *testing.T) {
	// Modes with spectral radius <1 whose product has spectral radius >1.
	a1 := mat.FromRows([][]float64{{0.9, 1.5}, {0, 0.2}})
	a2 := mat.FromRows([][]float64{{0.2, 0}, {1.5, 0.9}})
	prod := mat.Mul(a1, a2)
	r, err := mat.SpectralRadius(prod)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 1 {
		t.Skipf("counterexample product not divergent (r=%v); matrix choice needs updating", r)
	}
	res, _ := CommonLyapunov(a1, a2)
	if res.Found {
		t.Fatalf("certified a CQLF for a divergent switched pair (margin %v)", res.Margin)
	}
}
