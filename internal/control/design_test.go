package control

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tightcps/internal/lti"
	"tightcps/internal/mat"
	"tightcps/internal/plants"
)

func doubleIntegrator(h float64) *lti.System {
	phi := mat.FromRows([][]float64{{1, h}, {0, 1}})
	gamma := mat.FromRows([][]float64{{h * h / 2}, {h}})
	return lti.MustSystem(phi, gamma, mat.RowVec([]float64{1, 0}), h)
}

func eigOfClosedLoop(t *testing.T, s *lti.System, k lti.Feedback) []complex128 {
	t.Helper()
	eig, err := mat.Eigenvalues(lti.ClosedLoop(s, k))
	if err != nil {
		t.Fatal(err)
	}
	return eig
}

func TestPlacePolesReal(t *testing.T) {
	s := doubleIntegrator(0.1)
	want := []complex128{0.3, 0.5}
	k, err := PlacePoles(s, want)
	if err != nil {
		t.Fatal(err)
	}
	got := eigOfClosedLoop(t, s, k)
	sort.Slice(got, func(i, j int) bool { return real(got[i]) < real(got[j]) })
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("poles %v, want %v", got, want)
		}
	}
}

func TestPlacePolesComplexPair(t *testing.T) {
	s := doubleIntegrator(0.05)
	want := []complex128{complex(0.4, 0.3), complex(0.4, -0.3)}
	k, err := PlacePoles(s, want)
	if err != nil {
		t.Fatal(err)
	}
	got := eigOfClosedLoop(t, s, k)
	for _, g := range got {
		if math.Abs(cmplx.Abs(g)-0.5) > 1e-8 {
			t.Fatalf("|pole| = %v, want 0.5", cmplx.Abs(g))
		}
	}
}

func TestPlacePolesOnPaperPlant(t *testing.T) {
	// Place poles of the motivational DC motor at the locations the paper's
	// KT actually achieves, and verify we recover (numerically) that gain's
	// closed-loop spectrum.
	s := plants.Motivational()
	target := eigOfClosedLoop(t, s, plants.MotivationalKT)
	k, err := PlacePoles(s, target)
	if err != nil {
		t.Fatal(err)
	}
	got := eigOfClosedLoop(t, s, k)
	for i := range got {
		if cmplx.Abs(got[i]-target[i]) > 1e-6 {
			t.Fatalf("spectrum %v, want %v", got, target)
		}
	}
	// Gains themselves should agree too (pole placement for SISO is unique).
	if !mat.EqualApprox(k.K, plants.MotivationalKT.K, 1e-4) {
		t.Fatalf("recovered gain %v, paper %v", k.K, plants.MotivationalKT.K)
	}
}

func TestPlacePolesCountMismatch(t *testing.T) {
	if _, err := PlacePoles(doubleIntegrator(0.1), []complex128{0.5}); err == nil {
		t.Fatal("wrong pole count accepted")
	}
}

func TestPlacePolesUncontrollable(t *testing.T) {
	s := lti.MustSystem(mat.Diag([]float64{0.5, 0.6}), mat.ColVec([]float64{0, 0}), mat.RowVec([]float64{1, 0}), 0.1)
	if _, err := PlacePoles(s, []complex128{0.1, 0.2}); err == nil {
		t.Fatal("uncontrollable plant accepted")
	}
}

func TestDeadbeat(t *testing.T) {
	s := doubleIntegrator(0.1)
	k, err := Deadbeat(s)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mat.SpectralRadius(lti.ClosedLoop(s, k))
	if err != nil {
		t.Fatal(err)
	}
	if r > 1e-7 {
		t.Fatalf("deadbeat spectral radius %v", r)
	}
	tr := lti.SimulateFeedback(s, k, []float64{1, 1}, 5)
	if math.Abs(tr.Y[2]) > 1e-9 || math.Abs(tr.Y[3]) > 1e-9 {
		t.Fatalf("state not dead in n steps: %v", tr.Y)
	}
}

func TestDLQRStabilizesAndIsOptimalish(t *testing.T) {
	s := doubleIntegrator(0.1)
	q := mat.Identity(2)
	k, p, err := DLQR(s, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := mat.IsSchurStable(lti.ClosedLoop(s, k))
	if err != nil || !ok {
		t.Fatalf("LQR loop unstable (err=%v)", err)
	}
	if !mat.IsPositiveDefinite(p) {
		t.Fatalf("Riccati solution not PD")
	}
	// P satisfies the algebraic Riccati equation (residual check).
	gtp := mat.Mul(s.Gamma.T(), p)
	den := 1 + mat.Mul(gtp, s.Gamma).At(0, 0)
	kStar := mat.Scale(1/den, mat.Mul(gtp, s.Phi))
	resid := mat.Sub(
		mat.Add(q, mat.Sub(mat.Mul(mat.Mul(s.Phi.T(), p), s.Phi),
			mat.Mul(mat.Mul(mat.Mul(s.Phi.T(), p), s.Gamma), kStar))),
		p)
	if resid.MaxAbs() > 1e-8 {
		t.Fatalf("ARE residual %v", resid.MaxAbs())
	}
}

func TestDLQRRejectsBadArgs(t *testing.T) {
	s := doubleIntegrator(0.1)
	if _, _, err := DLQR(s, mat.Identity(3), 1); err == nil {
		t.Fatal("wrong Q shape accepted")
	}
	if _, _, err := DLQR(s, mat.Identity(2), 0); err == nil {
		t.Fatal("R=0 accepted")
	}
}

func TestDlyapKnown(t *testing.T) {
	// Scalar: a²p − p + q = 0 → p = q/(1−a²).
	a := mat.FromRows([][]float64{{0.5}})
	q := mat.FromRows([][]float64{{1}})
	p, err := Dlyap(a, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.At(0, 0)-1/(1-0.25)) > 1e-12 {
		t.Fatalf("dlyap scalar = %v", p.At(0, 0))
	}
}

// Property: dlyap solution satisfies AᵀPA − P + Q = 0 and is PD for PD Q on
// random stable A.
func TestDlyapResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		a := mat.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, 0.4*r.NormFloat64()/float64(n))
			}
		}
		q := mat.Identity(n)
		p, err := Dlyap(a, q)
		if err != nil {
			return false
		}
		resid := mat.Add(mat.Sub(mat.Mul(mat.Mul(a.T(), p), a), p), q)
		return resid.MaxAbs() < 1e-8 && mat.IsPositiveDefinite(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestDlyapShapeErrors(t *testing.T) {
	if _, err := Dlyap(mat.New(2, 3), mat.Identity(2)); err == nil {
		t.Fatal("non-square A accepted")
	}
	if _, err := Dlyap(mat.Identity(2), mat.Identity(3)); err == nil {
		t.Fatal("mismatched Q accepted")
	}
}

func TestPlaceObserverErrorDynamics(t *testing.T) {
	s := doubleIntegrator(0.1)
	want := []complex128{0.1, 0.2}
	l, err := PlaceObserver(s, want)
	if err != nil {
		t.Fatal(err)
	}
	errDyn := mat.Sub(s.Phi, mat.Mul(l, s.C))
	eig, err := mat.Eigenvalues(errDyn)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(eig, func(i, j int) bool { return real(eig[i]) < real(eig[j]) })
	for i := range want {
		if cmplx.Abs(eig[i]-want[i]) > 1e-8 {
			t.Fatalf("observer poles %v, want %v", eig, want)
		}
	}
}

func TestObserverConvergesAndFeedsController(t *testing.T) {
	// Output-feedback loop: deadbeat controller on observer estimates; the
	// estimate and the plant state must converge despite a wrong initial
	// estimate.
	s := doubleIntegrator(0.1)
	l, err := PlaceObserver(s, []complex128{0.05, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	k, err := Deadbeat(s)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(s, l, []float64{0, 0}) // wrong: plant starts at (1, −1)
	x := []float64{1, -1}
	for step := 0; step < 60; step++ {
		u := k.U(obs.Estimate())
		y := s.Output(x)
		obs.Update(u, y)
		x = s.Step(x, u)
	}
	if math.Abs(x[0]) > 1e-6 || math.Abs(x[1]) > 1e-6 {
		t.Fatalf("output feedback did not regulate: x=%v", x)
	}
	est := obs.Estimate()
	if math.Abs(est[0]-x[0]) > 1e-6 || math.Abs(est[1]-x[1]) > 1e-6 {
		t.Fatalf("estimate did not converge: %v vs %v", est, x)
	}
}

func TestPlaceObserverUnobservable(t *testing.T) {
	s := lti.MustSystem(mat.Diag([]float64{0.5, 0.6}), mat.ColVec([]float64{1, 1}), mat.RowVec([]float64{0, 0}), 0.1)
	if _, err := PlaceObserver(s, []complex128{0.1, 0.2}); err == nil {
		t.Fatal("unobservable plant accepted")
	}
}
