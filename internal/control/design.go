// Package control provides the discrete-time controller design machinery
// referenced by the paper: state-feedback pole placement (Ackermann's
// formula), discrete LQR via Riccati iteration, discrete Lyapunov equation
// solving, and a common-quadratic-Lyapunov-function (CQLF) search used to
// certify switching stability between the time-triggered controller KT and
// the event-triggered controller KE (Sec. 3, "Comments on switching
// stability").
package control

import (
	"errors"
	"fmt"

	"tightcps/internal/lti"
	"tightcps/internal/mat"
)

// ErrUncontrollable is returned when pole placement meets a plant whose
// controllability matrix is singular.
var ErrUncontrollable = errors.New("control: plant is not controllable")

// ErrNoConvergence is returned when an iterative design fails to converge.
var ErrNoConvergence = errors.New("control: iteration did not converge")

// PlacePoles computes the SISO state-feedback gain K such that the closed
// loop Φ − Γ·K has the desired eigenvalues, using Ackermann's formula:
//
//	K = [0 … 0 1]·𝒞⁻¹·p(Φ)
//
// where 𝒞 is the controllability matrix and p the desired characteristic
// polynomial. Complex poles must appear in conjugate pairs and len(poles)
// must equal the plant order.
func PlacePoles(s *lti.System, poles []complex128) (lti.Feedback, error) {
	n := s.Order()
	if len(poles) != n {
		return lti.Feedback{}, fmt.Errorf("control: need %d poles, got %d", n, len(poles))
	}
	cm := s.ControllabilityMatrix()
	cmInv, err := mat.Inverse(cm)
	if err != nil {
		return lti.Feedback{}, ErrUncontrollable
	}
	p := mat.PolyEvalMatrix(mat.PolyFromRoots(poles), s.Phi)
	// eₙᵀ·𝒞⁻¹·p(Φ): last row of 𝒞⁻¹ times p(Φ).
	lastRow := mat.RowVec(cmInv.Row(n - 1))
	k := mat.Mul(lastRow, p)
	return lti.Feedback{K: k}, nil
}

// Deadbeat places all closed-loop poles at the origin, driving any initial
// state to zero in at most n samples.
func Deadbeat(s *lti.System) (lti.Feedback, error) {
	return PlacePoles(s, make([]complex128, s.Order()))
}

// DLQR solves the infinite-horizon discrete LQR problem for cost
// Σ xᵀQx + uᵀRu by iterating the Riccati difference equation to a fixed
// point, and returns the optimal gain K (u = −K·x) and the solution P.
func DLQR(s *lti.System, q *mat.Matrix, r float64) (lti.Feedback, *mat.Matrix, error) {
	n := s.Order()
	if q.Rows() != n || q.Cols() != n {
		return lti.Feedback{}, nil, mat.ErrDimension
	}
	if r <= 0 {
		return lti.Feedback{}, nil, fmt.Errorf("control: R must be positive, got %v", r)
	}
	p := q.Clone()
	const maxIter = 100000
	for iter := 0; iter < maxIter; iter++ {
		// K = (R + ΓᵀPΓ)⁻¹ ΓᵀPΦ (scalar denominator in SISO).
		gtp := mat.Mul(s.Gamma.T(), p)      // 1×n
		den := r + mat.Mul(gtp, s.Gamma).At(0, 0)
		k := mat.Scale(1/den, mat.Mul(gtp, s.Phi)) // 1×n
		// P' = Q + ΦᵀPΦ − ΦᵀPΓ·K
		ptp := mat.Mul(mat.Mul(s.Phi.T(), p), s.Phi)
		corr := mat.Mul(mat.Mul(mat.Mul(s.Phi.T(), p), s.Gamma), k)
		pNext := mat.Add(q, mat.Sub(ptp, corr)).Symmetrize()
		if mat.EqualApprox(pNext, p, 1e-12*(1+pNext.MaxAbs())) {
			gtp = mat.Mul(s.Gamma.T(), pNext)
			den = r + mat.Mul(gtp, s.Gamma).At(0, 0)
			k = mat.Scale(1/den, mat.Mul(gtp, s.Phi))
			return lti.Feedback{K: k}, pNext, nil
		}
		p = pNext
	}
	return lti.Feedback{}, nil, ErrNoConvergence
}

// Dlyap solves the discrete Lyapunov equation AᵀPA − P + Q = 0 for P via
// Kronecker vectorisation: (I − Aᵀ⊗Aᵀ)·vec(P) = vec(Q). A must be Schur
// stable for a (unique, PD for PD Q) solution to exist.
func Dlyap(a, q *mat.Matrix) (*mat.Matrix, error) {
	n := a.Rows()
	if a.Cols() != n || q.Rows() != n || q.Cols() != n {
		return nil, mat.ErrDimension
	}
	at := a.T()
	m := mat.Sub(mat.Identity(n*n), mat.Kron(at, at))
	vp, err := mat.SolveVec(m, mat.Vec(q))
	if err != nil {
		return nil, fmt.Errorf("control: dlyap: %w", err)
	}
	return mat.Unvec(vp, n, n).Symmetrize(), nil
}
